package telemetry

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Kind names a built-in observation-stream scenario.
type Kind string

const (
	// RushHour reports slowdowns on a fixed hotspot set whose severity
	// swings through a sinusoidal peak-and-trough cycle — the ingest-path
	// twin of traffic.Sequence's model-driven rush hour.
	RushHour Kind = "rush-hour"
	// IncidentStorm closes a pseudo-random batch of edges each step and
	// reopens them CloseFor steps later — churn on the ban-like path
	// (closures, reopenings, full weight republshes) rather than the
	// speed path.
	IncidentStorm Kind = "incident-storm"
	// SensorNoise reports near-free-flow speeds on many random edges —
	// the adversarial case for the decay/snap machinery, where almost
	// every observation should collapse back to baseline.
	SensorNoise Kind = "sensor-noise"
)

// ParseKind maps a scenario name (as accepted by the -ingest flag and
// the /api/observations scenario field) to its Kind.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case RushHour, IncidentStorm, SensorNoise:
		return Kind(s), nil
	}
	return "", fmt.Errorf("telemetry: unknown scenario %q (want %q, %q or %q)", s, RushHour, IncidentStorm, SensorNoise)
}

// Scenario deterministically generates the observation stream of one
// workload: Observations(g, step) depends only on (scenario, graph,
// step), never on call order or wall clock, so replaying a scenario
// reproduces byte-identical publishes — which is what makes ingest-driven
// workloads usable in regression tests and benchmarks.
type Scenario struct {
	Kind Kind
	// Seed derives every step's pseudo-random choices. Two scenarios with
	// equal (Kind, Seed, ...) fields emit identical streams.
	Seed int64
	// Edges is how many edges each step touches (default 8).
	Edges int
	// Severity scales the effect: the worst-case slowdown factor for
	// RushHour (default 3: speeds bottom out at 1/3 of free flow), the
	// noise amplitude for SensorNoise (default 1.05: speeds within ±5% of
	// free flow). Unused by IncidentStorm.
	Severity float64
	// Period is the RushHour cycle length in steps (default 12, matching
	// traffic.DefaultPeriod).
	Period int
	// CloseFor is how many steps an IncidentStorm closure lasts before
	// the matching reopen is emitted (default 3).
	CloseFor int
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Edges <= 0 {
		sc.Edges = 8
	}
	if sc.Severity <= 1 {
		switch sc.Kind {
		case SensorNoise:
			sc.Severity = 1.05
		default:
			sc.Severity = 3
		}
	}
	if sc.Period <= 0 {
		sc.Period = 12
	}
	if sc.CloseFor <= 0 {
		sc.CloseFor = 3
	}
	return sc
}

// rng derives the pseudo-random source of one step. Keying the source by
// (seed, step) — not by a shared mutable stream — is what makes a step's
// observations independent of how many other steps were generated first.
func (sc Scenario) rng(step int) *rand.Rand {
	return rand.New(rand.NewSource(sc.Seed*1000003 + int64(step)))
}

// Observations generates step's observation batch for g. Steps count
// from 1 (step 0 is the baseline and emits nothing). The batch is in a
// deterministic order.
func (sc Scenario) Observations(g *graph.Graph, step int) []Observation {
	sc = sc.withDefaults()
	if step <= 0 || g.NumEdges() == 0 {
		return nil
	}
	switch sc.Kind {
	case IncidentStorm:
		return sc.stormAt(g, step)
	case SensorNoise:
		return sc.noiseAt(g, step)
	default:
		return sc.rushAt(g, step)
	}
}

// rushAt: the hotspot set is drawn once from the seed (step-independent,
// like traffic.Model's fixed hotspot positions) and every edge in it
// reports the same cycle-dependent speed.
func (sc Scenario) rushAt(g *graph.Graph, step int) []Observation {
	hot := sc.rng(0)
	edges := pickEdges(hot, g.NumEdges(), sc.Edges)
	// Severity profile: free flow at the cycle trough, 1/Severity at the
	// peak. sin ranges [-1,1]; map it to [0,1] before scaling.
	p := (1 + math.Sin(2*math.Pi*float64(step)/float64(sc.Period))) / 2
	speed := 1 / (1 + (sc.Severity-1)*p)
	obs := make([]Observation, len(edges))
	for i, e := range edges {
		obs[i] = Observation{Edge: e, Speed: speed}
	}
	return obs
}

// stormAt: each step closes a fresh pseudo-random batch and reopens the
// batch closed CloseFor steps earlier, re-derived from that step's rng —
// no state is carried between calls.
func (sc Scenario) stormAt(g *graph.Graph, step int) []Observation {
	var obs []Observation
	if old := step - sc.CloseFor; old >= 1 {
		for _, e := range pickEdges(sc.rng(old), g.NumEdges(), sc.Edges) {
			obs = append(obs, Observation{Edge: e, Reopen: true})
		}
	}
	for _, e := range pickEdges(sc.rng(step), g.NumEdges(), sc.Edges) {
		obs = append(obs, Observation{Edge: e, Closed: true})
	}
	return obs
}

// noiseAt: random edges report speeds uniformly within
// [1/Severity, Severity] of free flow — most land inside the snap
// threshold and must decay away to nothing.
func (sc Scenario) noiseAt(g *graph.Graph, step int) []Observation {
	r := sc.rng(step)
	edges := pickEdges(r, g.NumEdges(), sc.Edges)
	obs := make([]Observation, len(edges))
	for i, e := range edges {
		// log-uniform in [-ln S, +ln S]
		m := (2*r.Float64() - 1) * math.Log(sc.Severity)
		obs[i] = Observation{Edge: e, Speed: math.Exp(m)}
	}
	return obs
}

// pickEdges draws n distinct edge IDs from [0, numEdges), in draw order.
func pickEdges(r *rand.Rand, numEdges, n int) []graph.EdgeID {
	if n > numEdges {
		n = numEdges
	}
	seen := make(map[graph.EdgeID]struct{}, n)
	out := make([]graph.EdgeID, 0, n)
	for len(out) < n {
		e := graph.EdgeID(r.Intn(numEdges))
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}
