// Package telemetry turns streamed per-edge observations into versioned
// weight publishes — the ingest half of the serving stack's
// observability story. Where traffic.Sequence synthesizes whole rush-hour
// vectors from a model, the Ingestor here works the way a real probe
// feed does: individual measurements arrive (observed speeds, incident
// closures, reopenings), perturb the edge's weight away from a fixed
// baseline, and decay exponentially back toward it on a configurable
// half-life once the observations stop. Everything is deterministic in
// the observation stream, which is what makes rush-hour, incident-storm
// and sensor-noise scenarios (scenario.go) reproducible first-class
// workloads alongside the model-driven sequence.
//
// State model: per edge, the ingestor holds a log-space multiplier m
// (weight = baseline × e^m; an observed relative speed s sets
// m = ln(1/s)) and a closed flag (weight = +Inf while set). Decay scales
// every multiplier by 0.5^(steps/HalfLife) and *snaps* it to zero once
// its magnitude falls below SnapEpsilon — so a fully decayed ingestor
// publishes weights byte-identical to its baseline, not merely close
// (the regression tests pin this, and route sets computed downstream are
// bit-equal to the static configuration again).
//
// Every publish goes through weights.Store.Update, so the ingestor's
// internal state advances in lock-step with the version sequence even
// while other producers (the traffic sequence, closure republishes)
// share the store: versions stay gapless and each returned snapshot
// carries exactly the weights the ingestor computed for it.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/weights"
)

// Config tunes an Ingestor. The zero value selects the defaults.
type Config struct {
	// HalfLife is the decay half-life in ticks: after HalfLife worth of
	// Decay steps, an edge's log-space deviation from baseline has halved.
	// Default 4.
	HalfLife float64
	// SnapEpsilon is the log-space magnitude below which a decaying
	// multiplier snaps to exactly zero (baseline). Default 1e-3 (≈0.1%
	// weight deviation).
	SnapEpsilon float64
}

// DefaultHalfLife is the decay half-life (in ticks) of a zero Config.
const DefaultHalfLife = 4.0

// DefaultSnapEpsilon is the baseline-snap threshold of a zero Config.
const DefaultSnapEpsilon = 1e-3

func (c Config) withDefaults() Config {
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultHalfLife
	}
	if c.SnapEpsilon <= 0 {
		c.SnapEpsilon = DefaultSnapEpsilon
	}
	return c
}

// Observation is one per-edge measurement of the ingest stream.
type Observation struct {
	Edge graph.EdgeID `json:"edge"`
	// Speed is the observed relative speed as a fraction of free flow:
	// 0.5 means traffic moves at half the baseline speed (the weight
	// doubles), 1 means free flow (deviation cleared), values above 1 are
	// allowed (faster than baseline). Ignored when Closed or Reopen is
	// set; otherwise must be positive and finite.
	Speed float64 `json:"speed,omitempty"`
	// Closed reports an incident closure: the edge is impassable (+Inf)
	// until a Reopen observation arrives. Unlike weights.Store.Ban, a
	// closure is ingest state, not a permanent mask — it reopens.
	Closed bool `json:"closed,omitempty"`
	// Reopen clears a closure. The edge's speed deviation (if any)
	// resumes decaying from where it stood.
	Reopen bool `json:"reopen,omitempty"`
}

// Stats are the ingestor's cumulative counters (monotone; safe to read
// concurrently with ingest).
type Stats struct {
	// Observations counts measurements applied (closures and reopenings
	// included); Closures counts closure observations among them.
	Observations uint64
	Closures     uint64
	// Publishes counts snapshots this ingestor published into its store.
	Publishes uint64
}

// Ingestor folds an observation stream into versioned weight publishes
// against a fixed baseline. It is safe for concurrent use; observations
// and decay ticks serialize on an internal mutex, and each publish is
// atomic with the state transition that produced it.
type Ingestor struct {
	store *weights.Store
	base  []float64
	cfg   Config

	mu     sync.Mutex
	logm   map[graph.EdgeID]float64
	closed map[graph.EdgeID]struct{}

	observations atomic.Uint64
	closures     atomic.Uint64
	publishes    atomic.Uint64
}

// NewIngestor returns an ingestor publishing into store, decaying toward
// base (copied; typically the store's initial snapshot or the graph's
// base weights). The baseline length must match the store's edge count.
func NewIngestor(store *weights.Store, base []float64, cfg Config) *Ingestor {
	if store.Latest().Len() != len(base) {
		panic(fmt.Sprintf("telemetry: baseline has %d weights, store %d", len(base), store.Latest().Len()))
	}
	return &Ingestor{
		store:  store,
		base:   append([]float64(nil), base...),
		cfg:    cfg.withDefaults(),
		logm:   make(map[graph.EdgeID]float64),
		closed: make(map[graph.EdgeID]struct{}),
	}
}

// Store returns the store this ingestor publishes into.
func (in *Ingestor) Store() *weights.Store { return in.store }

// Baseline returns the decay target (shared storage; do not modify).
func (in *Ingestor) Baseline() []float64 { return in.base }

// Advance is the combined stream step: decay the standing state by
// decaySteps ticks, apply obs on top, and publish the result as one
// snapshot. Either part may be empty (decaySteps <= 0 skips decay, an
// empty obs list applies nothing); the publish happens regardless, so a
// quiet tick still yields a numbered snapshot downstream consumers can
// key on. Invalid observations (edge out of range, non-positive speed)
// reject the whole batch before any state changes.
func (in *Ingestor) Advance(obs []Observation, decaySteps float64) (*weights.Snapshot, error) {
	for _, o := range obs {
		if int(o.Edge) < 0 || int(o.Edge) >= len(in.base) {
			return nil, fmt.Errorf("telemetry: observation edge %d out of range [0,%d)", o.Edge, len(in.base))
		}
		if !o.Closed && !o.Reopen && (!(o.Speed > 0) || math.IsInf(o.Speed, 1)) {
			return nil, fmt.Errorf("telemetry: observation on edge %d has non-positive speed %v", o.Edge, o.Speed)
		}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if decaySteps > 0 {
		in.decayLocked(decaySteps)
	}
	for _, o := range obs {
		in.applyLocked(o)
	}
	snap := in.store.Update(func(*weights.Snapshot) []float64 { return in.weightsLocked() })
	in.publishes.Add(1)
	return snap, nil
}

// Observe applies a batch of observations and publishes — Advance with
// no decay.
func (in *Ingestor) Observe(obs ...Observation) (*weights.Snapshot, error) {
	return in.Advance(obs, 0)
}

// Decay ages the standing deviations by the given number of ticks and
// publishes — Advance with no observations. Deviations below the snap
// threshold clear exactly, so a long-enough decayed ingestor publishes
// its baseline byte-identically.
func (in *Ingestor) Decay(steps float64) *weights.Snapshot {
	snap, _ := in.Advance(nil, steps)
	return snap
}

func (in *Ingestor) applyLocked(o Observation) {
	in.observations.Add(1)
	switch {
	case o.Closed:
		in.closures.Add(1)
		in.closed[o.Edge] = struct{}{}
	case o.Reopen:
		delete(in.closed, o.Edge)
	default:
		m := -math.Log(o.Speed)
		if math.Abs(m) < in.cfg.SnapEpsilon {
			delete(in.logm, o.Edge) // free-flow report clears the deviation
		} else {
			in.logm[o.Edge] = m
		}
	}
}

func (in *Ingestor) decayLocked(steps float64) {
	f := math.Pow(0.5, steps/in.cfg.HalfLife)
	for e, m := range in.logm {
		m *= f
		if math.Abs(m) < in.cfg.SnapEpsilon {
			delete(in.logm, e)
		} else {
			in.logm[e] = m
		}
	}
}

// weightsLocked materializes the current vector: baseline copied, then
// the (typically few) perturbed edges patched. Untouched edges carry the
// baseline value bit-for-bit — no multiplication is applied to them.
func (in *Ingestor) weightsLocked() []float64 {
	w := make([]float64, len(in.base))
	copy(w, in.base)
	for e, m := range in.logm {
		w[e] = in.base[e] * math.Exp(m)
	}
	inf := math.Inf(1)
	for e := range in.closed {
		w[e] = inf
	}
	return w
}

// Perturbed returns how many edges currently deviate from baseline
// (closures not counted).
func (in *Ingestor) Perturbed() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.logm)
}

// ClosedEdges returns the currently closed edges, ascending.
func (in *Ingestor) ClosedEdges() []graph.EdgeID {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]graph.EdgeID, 0, len(in.closed))
	for e := range in.closed {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns the cumulative counters.
func (in *Ingestor) Stats() Stats {
	return Stats{
		Observations: in.observations.Load(),
		Closures:     in.closures.Load(),
		Publishes:    in.publishes.Load(),
	}
}
