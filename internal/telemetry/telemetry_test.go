package telemetry_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/telemetry"
	"repro/internal/traffic"
	"repro/internal/weights"
)

// gridTown builds the same 12×12 grid-with-bypass town the core tests
// use: enough structure for alternative routes to differ when an
// arterial closes.
func gridTown(t testing.TB) *graph.Graph {
	t.Helper()
	const n = 12
	b := graph.NewBuilder(n*n+2, 0)
	o := geo.Point{Lat: -37.84, Lon: 144.93}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			b.AddNode(geo.Offset(o, float64(r)*200, float64(c)*200))
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			class := graph.Residential
			if r == 4 || r == 8 {
				class = graph.Primary
			}
			if c == 6 {
				class = graph.Secondary
			}
			if c+1 < n {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r, c+1), Class: class, TwoWay: true})
			}
			if r+1 < n {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r+1, c), Class: graph.Residential, TwoWay: true})
			}
		}
	}
	w := b.AddNode(geo.Offset(o, -400, -200))
	e := b.AddNode(geo.Offset(o, -400, float64(n)*200))
	b.AddEdge(graph.EdgeSpec{From: id(0, 0), To: w, Class: graph.MotorwayLink, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: w, To: e, Class: graph.Motorway, TwoWay: true})
	b.AddEdge(graph.EdgeSpec{From: e, To: id(0, n-1), Class: graph.MotorwayLink, TwoWay: true})
	return b.Build()
}

func baseOf(g *graph.Graph) []float64 {
	return append([]float64(nil), g.BaseWeights()...)
}

// TestDecayConvergesByteIdentical pins the snap contract: after enough
// decay, the published vector equals the baseline bit for bit — every
// float64, compared by bits, not within a tolerance.
func TestDecayConvergesByteIdentical(t *testing.T) {
	g := gridTown(t)
	base := baseOf(g)
	st := weights.NewStore(base)
	in := telemetry.NewIngestor(st, base, telemetry.Config{HalfLife: 2})

	if _, err := in.Observe(
		telemetry.Observation{Edge: 3, Speed: 0.25},
		telemetry.Observation{Edge: 17, Speed: 0.5},
		telemetry.Observation{Edge: 40, Speed: 1.8},
	); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if got := in.Perturbed(); got != 3 {
		t.Fatalf("Perturbed = %d, want 3", got)
	}
	perturbed := st.Latest().Weights()
	if perturbed[3] == base[3] || perturbed[17] == base[17] || perturbed[40] == base[40] {
		t.Fatalf("observed edges did not move off baseline")
	}
	// Untouched edges must carry baseline bits even before decay.
	for e := range base {
		if e == 3 || e == 17 || e == 40 {
			continue
		}
		if math.Float64bits(perturbed[e]) != math.Float64bits(base[e]) {
			t.Fatalf("untouched edge %d perturbed: %v != %v", e, perturbed[e], base[e])
		}
	}

	// ln(4) ≈ 1.39 halves below 1e-3 within ~11 half-lives; 30 ticks at
	// HalfLife=2 is 15 half-lives — comfortably past the snap threshold.
	var last *weights.Snapshot
	for i := 0; i < 30; i++ {
		last = in.Decay(1)
	}
	if got := in.Perturbed(); got != 0 {
		t.Fatalf("Perturbed after decay = %d, want 0", got)
	}
	w := last.Weights()
	for e := range base {
		if math.Float64bits(w[e]) != math.Float64bits(base[e]) {
			t.Fatalf("edge %d not byte-identical after decay: %v vs baseline %v", e, w[e], base[e])
		}
	}
}

// TestIngestRoutesMatchPinnedSnapshot is the acceptance scenario: an
// ingest-driven incident (closure observations → publish → decay of an
// unrelated slowdown) must yield routes byte-identical to a planner
// pinned on the equivalent hand-built weight vector.
func TestIngestRoutesMatchPinnedSnapshot(t *testing.T) {
	g := gridTown(t)
	base := baseOf(g)
	st := weights.NewStore(base)
	in := telemetry.NewIngestor(st, base, telemetry.Config{HalfLife: 2})

	// Close two arterial edges and report a slowdown elsewhere, then let
	// the slowdown decay fully away: the surviving state is exactly "two
	// edges at +Inf, everything else baseline".
	closed := []graph.EdgeID{10, 55}
	if _, err := in.Observe(
		telemetry.Observation{Edge: closed[0], Closed: true},
		telemetry.Observation{Edge: closed[1], Closed: true},
		telemetry.Observation{Edge: 100, Speed: 0.5},
	); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	for i := 0; i < 30; i++ {
		in.Decay(1)
	}
	if got := in.ClosedEdges(); !reflect.DeepEqual(got, closed) {
		t.Fatalf("ClosedEdges = %v, want %v", got, closed)
	}

	hand := append([]float64(nil), base...)
	for _, e := range closed {
		hand[e] = math.Inf(1)
	}
	live := core.NewPlateaus(g, core.Options{Weights: st})
	pinned := core.NewPlateaus(g, core.Options{Weights: weights.Pin(hand)})

	pairs := [][2]graph.NodeID{{0, 143}, {13, 130}, {5, 138}, {60, 83}}
	for _, p := range pairs {
		got, errG := live.Alternatives(p[0], p[1])
		want, errW := pinned.Alternatives(p[0], p[1])
		if (errG == nil) != (errW == nil) {
			t.Fatalf("pair %v: error mismatch: live %v, pinned %v", p, errG, errW)
		}
		if len(got) != len(want) {
			t.Fatalf("pair %v: %d routes live, %d pinned", p, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Edges, want[i].Edges) {
				t.Fatalf("pair %v route %d: edges differ\nlive:   %v\npinned: %v", p, i, got[i].Edges, want[i].Edges)
			}
			if math.Float64bits(got[i].TimeS) != math.Float64bits(want[i].TimeS) {
				t.Fatalf("pair %v route %d: time %v vs %v", p, i, got[i].TimeS, want[i].TimeS)
			}
		}
	}

	// Reopen both and re-converge: routes must match the pure baseline.
	if _, err := in.Observe(
		telemetry.Observation{Edge: closed[0], Reopen: true},
		telemetry.Observation{Edge: closed[1], Reopen: true},
	); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	basePinned := core.NewPlateaus(g, core.Options{Weights: weights.Pin(base)})
	for _, p := range pairs {
		got, _ := live.Alternatives(p[0], p[1])
		want, _ := basePinned.Alternatives(p[0], p[1])
		if len(got) != len(want) {
			t.Fatalf("post-reopen pair %v: %d routes live, %d pinned", p, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Edges, want[i].Edges) {
				t.Fatalf("post-reopen pair %v route %d differs", p, i)
			}
		}
	}
}

func TestObserveValidation(t *testing.T) {
	g := gridTown(t)
	base := baseOf(g)
	in := telemetry.NewIngestor(weights.NewStore(base), base, telemetry.Config{})

	v0 := in.Store().Version()
	if _, err := in.Observe(telemetry.Observation{Edge: graph.EdgeID(len(base)), Speed: 1}); err == nil {
		t.Fatalf("out-of-range edge accepted")
	}
	if _, err := in.Observe(telemetry.Observation{Edge: 0, Speed: 0}); err == nil {
		t.Fatalf("zero speed accepted")
	}
	if _, err := in.Observe(telemetry.Observation{Edge: 0, Speed: math.Inf(1)}); err == nil {
		t.Fatalf("+Inf speed accepted")
	}
	if in.Store().Version() != v0 {
		t.Fatalf("rejected batch still published")
	}
	if s := in.Stats(); s.Observations != 0 || s.Publishes != 0 {
		t.Fatalf("rejected batch counted: %+v", s)
	}
}

// TestScenarioDeterministic pins the replay contract: Observations is a
// pure function of (scenario, graph, step).
func TestScenarioDeterministic(t *testing.T) {
	g := gridTown(t)
	for _, kind := range []telemetry.Kind{telemetry.RushHour, telemetry.IncidentStorm, telemetry.SensorNoise} {
		sc := telemetry.Scenario{Kind: kind, Seed: 42}
		a := sc.Observations(g, 5)
		// Generate other steps in between: step 5 must not care.
		sc.Observations(g, 1)
		sc.Observations(g, 9)
		b := sc.Observations(g, 5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: step 5 not reproducible:\n%v\n%v", kind, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("%s: step 5 empty", kind)
		}
		if other := (telemetry.Scenario{Kind: kind, Seed: 43}).Observations(g, 5); reflect.DeepEqual(a, other) {
			t.Fatalf("%s: different seeds produced identical observations", kind)
		}
		if sc.Observations(g, 0) != nil {
			t.Fatalf("%s: step 0 must be empty (baseline)", kind)
		}
	}
}

// TestIncidentStormReopens drives the storm scenario through an ingestor
// and checks closures drain: once the storm stops, every closed edge is
// reopened within CloseFor steps and the weights return to baseline
// byte-identically.
func TestIncidentStormReopens(t *testing.T) {
	g := gridTown(t)
	base := baseOf(g)
	st := weights.NewStore(base)
	in := telemetry.NewIngestor(st, base, telemetry.Config{})
	sc := telemetry.Scenario{Kind: telemetry.IncidentStorm, Seed: 7, Edges: 5, CloseFor: 2}

	for step := 1; step <= 10; step++ {
		if _, err := in.Advance(sc.Observations(g, step), 1); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got := len(in.ClosedEdges()); got > sc.Edges*sc.CloseFor {
			t.Fatalf("step %d: %d closures standing, want ≤ %d", step, got, sc.Edges*sc.CloseFor)
		}
	}
	// Storm over: feed only the trailing reopens.
	for step := 11; step <= 10+sc.CloseFor; step++ {
		var reopens []telemetry.Observation
		for _, o := range sc.Observations(g, step) {
			if o.Reopen {
				reopens = append(reopens, o)
			}
		}
		if _, err := in.Advance(reopens, 1); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if got := in.ClosedEdges(); len(got) != 0 {
		t.Fatalf("closures left standing after storm: %v", got)
	}
	w := st.Latest().Weights()
	for e := range base {
		if math.Float64bits(w[e]) != math.Float64bits(base[e]) {
			t.Fatalf("edge %d not back to baseline: %v vs %v", e, w[e], base[e])
		}
	}
}

// TestConcurrentProducersShareStore is the satellite-3 pin at the
// integration level: a traffic.Sequence auto-advance and a telemetry
// ingestor racing on ONE store must never tear the version sequence —
// every subscriber-observed version is gapless and strictly monotone,
// and each snapshot is wholly one producer's vector. Run under -race.
func TestConcurrentProducersShareStore(t *testing.T) {
	g := gridTown(t)
	base := baseOf(g)
	st := weights.NewStore(base)

	var mu sync.Mutex
	var seen []weights.Version
	st.Subscribe(func(s *weights.Snapshot) {
		mu.Lock()
		seen = append(seen, s.Version())
		mu.Unlock()
	})

	seq := traffic.NewSequence(g, traffic.DefaultModel(1), 0)
	in := telemetry.NewIngestor(st, base, telemetry.Config{})
	sc := telemetry.Scenario{Kind: telemetry.RushHour, Seed: 3, Edges: 4}

	const steps = 40
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < steps; i++ {
			seq.Advance(st)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 1; i <= steps; i++ {
			if _, err := in.Advance(sc.Observations(g, i), 1); err != nil {
				t.Errorf("ingest step %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2*steps {
		t.Fatalf("saw %d publishes, want %d", len(seen), 2*steps)
	}
	for i, v := range seen {
		if want := weights.Version(i + 2); v != want { // store's NewStore publish is version 1
			t.Fatalf("publish %d has version %d, want %d (gapless monotone)", i, v, want)
		}
	}
	if got := st.Version(); got != weights.Version(2*steps+1) {
		t.Fatalf("final version %d, want %d", got, 2*steps+1)
	}
}

func TestParseKind(t *testing.T) {
	for _, s := range []string{"rush-hour", "incident-storm", "sensor-noise"} {
		if _, err := telemetry.ParseKind(s); err != nil {
			t.Fatalf("ParseKind(%q): %v", s, err)
		}
	}
	if _, err := telemetry.ParseKind("blizzard"); err == nil {
		t.Fatalf("unknown kind accepted")
	}
}
