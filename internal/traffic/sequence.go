package traffic

import (
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/weights"
)

// Sequence is the live-traffic snapshot producer: a deterministic,
// time-stepped rush-hour cycle over one road network. Step 0 reproduces
// the base Model exactly (so a freshly assembled city matches the static
// experiments byte for byte); subsequent steps swing congestion intensity
// and hotspot severity through a smooth peak-and-trough cycle, modelling
// traffic building toward rush hour and draining away again. Each step is
// a whole new weight vector, which Advance publishes into a
// weights.Store — the store then applies its ban mask, so road closures
// survive every traffic step.
//
// Everything is deterministic in (graph, model, step index): replaying a
// sequence reproduces the identical snapshot values, which is what makes
// live-swap behaviour testable.
type Sequence struct {
	g     *graph.Graph
	model Model
	// period is the number of steps in one full rush-hour cycle.
	period int
	// mu serializes Advance end to end (step take, weight computation,
	// publish), so concurrent producers cannot publish steps out of order
	// — the store's newest version is always the newest step.
	mu   sync.Mutex
	step int
}

// DefaultPeriod is the cycle length used when NewSequence is given a
// non-positive period: 12 steps per cycle, i.e. a publish cadence of
// "five minutes" in simulated rush-hour time.
const DefaultPeriod = 12

// NewSequence returns a producer over g whose step-0 weights equal
// Apply(g, model).
func NewSequence(g *graph.Graph, model Model, period int) *Sequence {
	if period <= 0 {
		period = DefaultPeriod
	}
	return &Sequence{g: g, model: model.withDefaults(), period: period}
}

// Period returns the steps per rush-hour cycle.
func (s *Sequence) Period() int { return s.period }

// Step returns the index of the last produced step (0 before any Advance).
func (s *Sequence) Step() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.step
}

// ModelAt returns the congestion model of step i: the base model with
// intensity and hotspot severity scaled by the rush-hour profile. Hotspot
// *positions* stay fixed across steps (the same bottlenecks jam and clear),
// which is what lets CH re-customization reuse its contraction order
// profitably.
func (s *Sequence) ModelAt(i int) Model {
	m := s.model
	// Rush-hour profile: 1 at step 0, swinging ±50% over one period.
	p := 1 + 0.5*math.Sin(2*math.Pi*float64(i)/float64(s.period))
	m.Intensity *= p
	m.HotspotSeverity = 1 + (m.HotspotSeverity-1)*p
	return m
}

// WeightsAt computes the full private weight vector of step i.
func (s *Sequence) WeightsAt(i int) []float64 {
	return Apply(s.g, s.ModelAt(i))
}

// Advance produces the next step's weight vector and publishes it to
// store, returning the published snapshot (with the store's ban mask
// applied). It is safe for concurrent use: callers advance distinct
// steps and publish them in step order. The publish itself goes through
// store.Update, so no other producer of the same store (a telemetry
// ingestor, a closure republish) can interleave between the step take and
// its publish — the returned snapshot always carries exactly this step's
// weights.
func (s *Sequence) Advance(store *weights.Store) *weights.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.step++
	w := s.WeightsAt(s.step)
	return store.Update(func(*weights.Snapshot) []float64 { return w })
}
