package traffic

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/weights"
)

func sequenceTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return testGraph()
}

func TestSequenceStepZeroMatchesApply(t *testing.T) {
	g := sequenceTestGraph(t)
	m := DefaultModel(42)
	seq := NewSequence(g, m, 0)
	want := Apply(g, m)
	got := seq.WeightsAt(0)
	for e := range want {
		if got[e] != want[e] {
			t.Fatalf("edge %d: step-0 weight %g != Apply %g", e, got[e], want[e])
		}
	}
}

func TestSequenceDeterministicAndVarying(t *testing.T) {
	g := sequenceTestGraph(t)
	a := NewSequence(g, DefaultModel(42), 12)
	b := NewSequence(g, DefaultModel(42), 12)
	same, diff := true, false
	w0 := a.WeightsAt(0)
	for i := 1; i <= 3; i++ {
		wa, wb := a.WeightsAt(i), b.WeightsAt(i)
		for e := range wa {
			if wa[e] != wb[e] {
				same = false
			}
			if wa[e] != w0[e] {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("two sequences with identical parameters disagree")
	}
	if !diff {
		t.Fatal("traffic steps never change any weight")
	}
}

func TestSequenceWeightsStayPositiveFinite(t *testing.T) {
	g := sequenceTestGraph(t)
	seq := NewSequence(g, DefaultModel(9), 8)
	for i := 0; i <= 8; i++ {
		for e, w := range seq.WeightsAt(i) {
			if !(w > 0) || math.IsInf(w, 1) {
				t.Fatalf("step %d edge %d: weight %g out of range", i, e, w)
			}
		}
	}
}

func TestAdvancePublishesNumberedSnapshotsAndKeepsBans(t *testing.T) {
	g := sequenceTestGraph(t)
	seq := NewSequence(g, DefaultModel(42), 12)
	store := weights.NewStore(seq.WeightsAt(0))

	store.Ban(graph.EdgeID(3)) // version 2
	s := seq.Advance(store)
	if s.Version() != 3 {
		t.Fatalf("advance published version %d, want 3", s.Version())
	}
	if seq.Step() != 1 {
		t.Fatalf("step = %d, want 1", seq.Step())
	}
	if !math.IsInf(s.Weights()[3], 1) {
		t.Fatal("traffic step dropped the store's ban")
	}
	// The published vector matches the deterministic step computation on
	// every unbanned edge.
	want := seq.WeightsAt(1)
	for e := range want {
		if e == 3 {
			continue
		}
		if s.Weights()[e] != want[e] {
			t.Fatalf("edge %d: published %g, want %g", e, s.Weights()[e], want[e])
		}
	}
}
