// Package traffic synthesizes the commercial provider's private view of
// travel times.
//
// The study could not obtain Google's real-time/historical traffic data
// (paper footnote 1); what matters for reproducing the study is only that
// the commercial provider plans on *systematically different* data than
// the public OSM-derived weights. This package produces such a view
// deterministically: a spatially correlated congestion field (value noise
// over a coarse grid, bilinearly interpolated so that adjacent streets see
// similar congestion), per-road-class bias (arterials attract traffic,
// side streets less so), and a small per-edge estimation discrepancy. The
// result is a weight vector under which the provider's optimal routes
// differ from the OSM-optimal ones and route travel-time *rankings can
// flip* between the two datasets — the Fig. 4 phenomenon.
package traffic

import (
	"math"

	"repro/internal/geo"
	"repro/internal/graph"
)

// Model describes a deterministic congestion field over a road network.
type Model struct {
	// Seed makes the field reproducible; different seeds give different
	// rush-hour patterns.
	Seed uint64
	// CellMeters is the correlation length of congestion (default 900 m).
	CellMeters float64
	// Intensity scales how far congestion multipliers deviate from 1
	// (default 0.55, giving multipliers in roughly [0.75, 1.9]).
	Intensity float64
	// Hotspots is the number of severe-congestion spots (incident sites,
	// rush-hour bottlenecks) per 100 km² (default 9). Hotspots are what
	// makes the provider's optimal routes *structurally* different from
	// the OSM-optimal ones: a smooth field alone averages out over a long
	// route, but a jammed corridor forces a visible detour.
	Hotspots float64
	// HotspotRadiusMeters is the jam's influence radius (default 1500).
	HotspotRadiusMeters float64
	// HotspotSeverity is the weight multiplier at a hotspot's center
	// (default 3.5), decaying smoothly to 1 at the radius. It applies to
	// arterial classes only — jams live on main roads.
	HotspotSeverity float64
}

// DefaultModel returns the model used by the experiments.
func DefaultModel(seed uint64) Model {
	return Model{
		Seed:                seed,
		CellMeters:          900,
		Intensity:           0.55,
		Hotspots:            9,
		HotspotRadiusMeters: 1500,
		HotspotSeverity:     3.5,
	}
}

func (m Model) withDefaults() Model {
	if m.CellMeters <= 0 {
		m.CellMeters = 900
	}
	if m.Intensity <= 0 {
		m.Intensity = 0.55
	}
	if m.Hotspots <= 0 {
		m.Hotspots = 9
	}
	if m.HotspotRadiusMeters <= 0 {
		m.HotspotRadiusMeters = 1500
	}
	if m.HotspotSeverity <= 1 {
		m.HotspotSeverity = 3.5
	}
	return m
}

// Apply returns the provider's private weight for every edge of g: the
// base travel time scaled by the congestion multiplier at the edge's
// midpoint. The output is deterministic in (g, model).
func Apply(g *graph.Graph, m Model) []float64 {
	m = m.withDefaults()
	w := make([]float64, g.NumEdges())
	bbox := g.BBox()
	// Meters-per-degree at the network's latitude, for grid coordinates.
	latScale := 111320.0
	lonScale := 111320.0 * math.Cos(bbox.Center().Lat*math.Pi/180)
	spots := m.hotspots(bbox, latScale, lonScale)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		a := g.Point(ed.From)
		b := g.Point(ed.To)
		midLat := (a.Lat + b.Lat) / 2
		midLon := (a.Lon + b.Lon) / 2
		x := (midLon - bbox.MinLon) * lonScale / m.CellMeters
		y := (midLat - bbox.MinLat) * latScale / m.CellMeters
		field := m.valueNoise(x, y) // in [0,1)
		mult := m.multiplier(field, ed.Class, uint64(e))
		if arterial(ed.Class) {
			// Edge position in meters from the bbox corner.
			ex := (midLon - bbox.MinLon) * lonScale
			ey := (midLat - bbox.MinLat) * latScale
			mult *= m.hotspotFactor(spots, ex, ey)
		}
		w[e] = ed.TimeS * mult
	}
	return w
}

// arterial reports whether jams apply to this class: congestion hotspots
// live on the main roads that carry through traffic.
func arterial(c graph.RoadClass) bool {
	switch c {
	case graph.Motorway, graph.MotorwayLink, graph.Trunk, graph.Primary, graph.Secondary:
		return true
	default:
		return false
	}
}

type hotspot struct{ x, y float64 }

// hotspots places the model's jam centers deterministically inside the
// network's bounding box.
func (m Model) hotspots(bbox geo.BBox, latScale, lonScale float64) []hotspot {
	wM := (bbox.MaxLon - bbox.MinLon) * lonScale
	hM := (bbox.MaxLat - bbox.MinLat) * latScale
	areaKm2 := wM * hM / 1e6
	n := int(m.Hotspots*areaKm2/100 + 0.5)
	if n < 1 {
		n = 1
	}
	out := make([]hotspot, n)
	for i := range out {
		hx := hash01(m.Seed ^ (uint64(i)*0xA24BAED4963EE407 + 3))
		hy := hash01(m.Seed ^ (uint64(i)*0x9FB21C651E98DF25 + 7))
		out[i] = hotspot{x: hx * wM, y: hy * hM}
	}
	return out
}

// hotspotFactor returns the combined jam multiplier at position (x, y)
// meters: severity at a center, smoothly decaying to 1 at the radius.
func (m Model) hotspotFactor(spots []hotspot, x, y float64) float64 {
	f := 1.0
	r2 := m.HotspotRadiusMeters * m.HotspotRadiusMeters
	for _, s := range spots {
		dx, dy := x-s.x, y-s.y
		d2 := dx*dx + dy*dy
		if d2 >= r2 {
			continue
		}
		// Smooth falloff: severity at center, 1 at the rim.
		t := 1 - d2/r2
		f *= 1 + (m.HotspotSeverity-1)*t*t
	}
	return f
}

// multiplier combines the congestion field with class bias and per-edge
// estimation jitter.
func (m Model) multiplier(field float64, class graph.RoadClass, edgeID uint64) float64 {
	// Class bias: arterials carry traffic, so congestion hits them harder;
	// the provider also tends to estimate side streets slightly slower
	// than the raw maxspeed model does.
	var bias float64
	switch class {
	case graph.Motorway, graph.MotorwayLink:
		bias = 0.05
	case graph.Trunk, graph.Primary:
		bias = 0.10
	case graph.Secondary, graph.Tertiary:
		bias = 0.05
	default:
		bias = 0.0
	}
	// Field in [0,1) -> congestion term in [-0.3, +1) of intensity.
	congestion := m.Intensity * (1.3*field - 0.3)
	// Small deterministic per-edge discrepancy in [-0.05, +0.05).
	jitter := 0.10 * (hash01(m.Seed^(edgeID*0x9E3779B97F4A7C15+1)) - 0.5)
	mult := 1 + bias + congestion + jitter
	if mult < 0.7 {
		mult = 0.7
	}
	return mult
}

// valueNoise evaluates smooth value noise at grid coordinates (x, y):
// deterministic lattice values blended with smoothstep interpolation.
func (m Model) valueNoise(x, y float64) float64 {
	x0 := math.Floor(x)
	y0 := math.Floor(y)
	fx := smoothstep(x - x0)
	fy := smoothstep(y - y0)
	v00 := m.lattice(int64(x0), int64(y0))
	v10 := m.lattice(int64(x0)+1, int64(y0))
	v01 := m.lattice(int64(x0), int64(y0)+1)
	v11 := m.lattice(int64(x0)+1, int64(y0)+1)
	top := v00 + (v10-v00)*fx
	bot := v01 + (v11-v01)*fx
	return top + (bot-top)*fy
}

func (m Model) lattice(ix, iy int64) float64 {
	h := m.Seed
	h ^= uint64(ix) * 0x9E3779B97F4A7C15
	h ^= uint64(iy) * 0xC2B2AE3D27D4EB4F
	return hash01(h)
}

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// hash01 maps a 64-bit value to [0,1) with an avalanche mix (splitmix64
// finalizer).
func hash01(h uint64) float64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
