package traffic

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
)

func testGraph() *graph.Graph {
	b := graph.NewBuilder(0, 0)
	o := geo.Point{Lat: -37.81, Lon: 144.96}
	const n = 12
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			b.AddNode(geo.Offset(o, float64(r)*400, float64(c)*400))
		}
	}
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			class := graph.Residential
			if r%4 == 0 {
				class = graph.Primary
			}
			if c+1 < n {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r, c+1), Class: class, TwoWay: true})
			}
			if r+1 < n {
				b.AddEdge(graph.EdgeSpec{From: id(r, c), To: id(r+1, c), Class: graph.Residential, TwoWay: true})
			}
		}
	}
	return b.Build()
}

func TestApplyDeterministic(t *testing.T) {
	g := testGraph()
	w1 := Apply(g, DefaultModel(42))
	w2 := Apply(g, DefaultModel(42))
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("edge %d: %f != %f — model not deterministic", i, w1[i], w2[i])
		}
	}
}

func TestApplyDifferentSeedsDiffer(t *testing.T) {
	g := testGraph()
	w1 := Apply(g, DefaultModel(1))
	w2 := Apply(g, DefaultModel(2))
	diff := 0
	for i := range w1 {
		if math.Abs(w1[i]-w2[i]) > 1e-12 {
			diff++
		}
	}
	if diff < len(w1)/2 {
		t.Errorf("only %d/%d weights differ between seeds", diff, len(w1))
	}
}

func TestMultipliersBounded(t *testing.T) {
	g := testGraph()
	w := Apply(g, DefaultModel(7))
	for e := range w {
		base := g.Edge(graph.EdgeID(e)).TimeS
		ratio := w[e] / base
		if ratio < 0.7-1e-9 || ratio > 40 {
			t.Fatalf("edge %d multiplier %f outside [0.7, 40]", e, ratio)
		}
		if math.IsNaN(w[e]) || w[e] <= 0 {
			t.Fatalf("edge %d weight %f invalid", e, w[e])
		}
	}
}

func TestWeightsActuallyDifferFromBase(t *testing.T) {
	g := testGraph()
	w := Apply(g, DefaultModel(7))
	changed := 0
	for e := range w {
		if math.Abs(w[e]-g.Edge(graph.EdgeID(e)).TimeS) > 1e-9 {
			changed++
		}
	}
	if changed < len(w)*9/10 {
		t.Errorf("only %d/%d weights changed — private data too similar to public", changed, len(w))
	}
}

func TestSpatialCorrelation(t *testing.T) {
	// Multipliers of nearby same-class edges should correlate more than
	// those of distant edges: compare mean absolute multiplier difference
	// between adjacent edge pairs and random far pairs.
	g := testGraph()
	m := DefaultModel(11)
	w := Apply(g, m)
	mult := func(e int) float64 { return w[e] / g.Edge(graph.EdgeID(e)).TimeS }

	var nearSum, nearN float64
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		out := g.OutEdges(v)
		for i := 0; i+1 < len(out); i++ {
			a, b := out[i], out[i+1]
			if g.Edge(a).Class == g.Edge(b).Class {
				nearSum += math.Abs(mult(int(a)) - mult(int(b)))
				nearN++
			}
		}
	}
	var farSum, farN float64
	step := g.NumEdges()/97 + 1
	for i := 0; i < g.NumEdges(); i += step {
		j := (i + g.NumEdges()/2) % g.NumEdges()
		if g.Edge(graph.EdgeID(i)).Class == g.Edge(graph.EdgeID(j)).Class {
			farSum += math.Abs(mult(i) - mult(j))
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Skip("degenerate sample")
	}
	near := nearSum / nearN
	far := farSum / farN
	if near >= far {
		t.Errorf("adjacent-edge multiplier difference %.4f not below far-pair difference %.4f — field not spatially correlated", near, far)
	}
}

func TestModelDefaults(t *testing.T) {
	m := Model{Seed: 5}.withDefaults()
	if m.CellMeters != 900 || m.Intensity != 0.55 {
		t.Errorf("defaults = %+v", m)
	}
	if m.Hotspots != 9 || m.HotspotRadiusMeters != 1500 || m.HotspotSeverity != 3.5 {
		t.Errorf("hotspot defaults = %+v", m)
	}
	d := DefaultModel(5)
	if d.Seed != 5 || d.CellMeters != 900 {
		t.Errorf("DefaultModel = %+v", d)
	}
}

func TestValueNoiseRangeAndContinuity(t *testing.T) {
	m := DefaultModel(3)
	prev := m.valueNoise(0, 0)
	for i := 1; i <= 1000; i++ {
		x := float64(i) * 0.01
		v := m.valueNoise(x, x*0.7)
		if v < 0 || v >= 1.0001 {
			t.Fatalf("noise out of range at %f: %f", x, v)
		}
		if math.Abs(v-prev) > 0.1 {
			t.Fatalf("noise jumps too fast at %f: %f -> %f", x, prev, v)
		}
		prev = v
	}
}

func BenchmarkApply(b *testing.B) {
	g := testGraph()
	m := DefaultModel(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Apply(g, m)
	}
}
