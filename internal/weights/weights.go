// Package weights implements the versioned weight store behind live-traffic
// serving: immutable, numbered weight Snapshots published through a Store
// with atomic latest-pointer semantics.
//
// The serving stack's whole point is that edge weights change — the Fig. 4
// phenomenon of the paper is route rankings flipping between the public OSM
// metric and the provider's congestion-laden private metric. Planners
// therefore no longer freeze a weight copy at construction; they hold a
// Source and resolve the current Snapshot per query. Producers (the traffic
// simulation, road-closure handling) publish whole new vectors; consumers
// (planners, the engine's result cache, CH re-customization) key everything
// they derive by the snapshot's Version, so a publish invalidates exactly
// the state derived from superseded versions.
//
// Ban semantics: an edge banned on the Store reads +Inf in every snapshot —
// the current one (Ban republishes immediately) and every future Publish
// (the mask is applied before the pointer swings). +Inf weights are
// impassable walls for every search in this repository, so a closure
// survives any number of traffic re-publishes.
package weights

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Version numbers the snapshots of one Store, starting at 1 and strictly
// increasing with each publish. Version 0 means "unversioned" (no snapshot
// resolved).
type Version uint64

// Pinned is the version of snapshots created by Pin: state that never
// changes, such as a planner's construction-time weight vector.
const Pinned Version = 1

// Snapshot is one immutable, numbered weight vector: w[e] is the weight of
// edge e in seconds, +Inf for banned (impassable) edges. Snapshots are
// never modified after creation and are safe to share across goroutines.
type Snapshot struct {
	version Version
	w       []float64
	// Delta vs the previous snapshot of the same store, when small enough
	// to be useful (see Delta): deltaOK gates it, deltaSince names the
	// snapshot the changed-edge list is relative to.
	deltaOK    bool
	deltaSince Version
	changed    []graph.EdgeID
}

// MaxDelta is the largest changed-edge list a publish records. Beyond it a
// consumer's incremental update would approach the cost of its full scan,
// so the snapshot simply reports "no delta" and consumers rescan.
const MaxDelta = 64

// NewSnapshot wraps w as a snapshot with the given version. It takes
// ownership: the caller must not modify w afterwards.
func NewSnapshot(version Version, w []float64) *Snapshot {
	return &Snapshot{version: version, w: w}
}

// Pin wraps w as a fixed standalone snapshot (version Pinned). A pinned
// snapshot is its own Source, so a planner given one plans on frozen
// weights forever — the pre-store construction-time-copy behaviour.
func Pin(w []float64) *Snapshot { return NewSnapshot(Pinned, w) }

// Version returns the snapshot's number within its store.
func (s *Snapshot) Version() Version { return s.version }

// Weights returns the weight vector, indexed by EdgeID. The returned slice
// aliases snapshot storage and must not be modified.
func (s *Snapshot) Weights() []float64 { return s.w }

// Len returns the number of edge weights.
func (s *Snapshot) Len() int { return len(s.w) }

// Snapshot implements Source: a snapshot always resolves to itself.
func (s *Snapshot) Snapshot() *Snapshot { return s }

// Delta reports which edges this snapshot changed relative to the
// since-numbered snapshot of the same store, when the publish recorded one
// (at most MaxDelta edges; ok is false for first snapshots, pins, and
// bulk publishes such as full traffic steps). Consumers deriving
// per-version state from whole-vector scans — the elliptic pruning bound,
// per-class minimum speeds — use it to update incrementally across
// versions whose relevant minima are untouched instead of rescanning on
// every snapshot. The returned slice is shared and must not be modified.
func (s *Snapshot) Delta() (since Version, changedEdges []graph.EdgeID, ok bool) {
	if !s.deltaOK {
		return 0, nil, false
	}
	return s.deltaSince, s.changed, true
}

// Source resolves the weight snapshot a query should plan on. A *Store
// resolves to its latest published snapshot; a *Snapshot resolves to
// itself (a pin). Implementations must be safe for concurrent use.
type Source interface {
	Snapshot() *Snapshot
}

// Store is the versioned weight store: it owns the numbered snapshot
// sequence of one metric (say, a city's private traffic weights) and hands
// the latest out through an atomic pointer, so readers never block
// publishers and vice versa.
type Store struct {
	latest atomic.Pointer[Snapshot]

	mu     sync.Mutex // serializes publishers and subscriber delivery
	next   Version
	banned map[graph.EdgeID]struct{}
	subs   []func(*Snapshot)
}

// NewStore creates a store and publishes a copy of base as version 1.
func NewStore(base []float64) *Store {
	st := &Store{next: 1, banned: make(map[graph.EdgeID]struct{})}
	st.Publish(base)
	return st
}

// Latest returns the most recently published snapshot. It never returns
// nil and never blocks, whatever publishers are doing.
func (st *Store) Latest() *Snapshot { return st.latest.Load() }

// Snapshot implements Source.
func (st *Store) Snapshot() *Snapshot { return st.Latest() }

// Version returns the latest published version.
func (st *Store) Version() Version { return st.Latest().Version() }

// Publish copies w, applies the store's ban mask, and installs the result
// as the next-numbered snapshot. Subscribers run synchronously, in
// subscription order, before Publish returns; they see the new snapshot as
// Latest. The caller keeps ownership of w.
//
// Producer model: any number of producers may publish into one store —
// the publisher mutex serializes them, so versions are always gapless and
// strictly monotone, and subscribers observe every snapshot in version
// order. What the mutex cannot arbitrate is *semantic* ownership: two
// producers publishing whole vectors (a traffic sequence and a telemetry
// ingestor, say) overwrite each other last-writer-wins. A producer that
// derives its next vector from the current snapshot must use Update, or a
// concurrent publish can land between its read and its write.
func (st *Store) Publish(w []float64) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.publishLocked(w)
}

// Update runs fn under the publisher lock and publishes its result — the
// atomic read-modify-write a producer needs when its next vector depends
// on the store's current state (or when its internal state must stay in
// lock-step with the version sequence: the returned snapshot is
// guaranteed to carry exactly the weights fn produced, with no other
// publish interleaved). fn receives the current snapshot (never nil) and
// returns the next weight vector; returning nil skips the publish and
// returns the current snapshot unchanged. fn must not call back into the
// store.
func (st *Store) Update(fn func(prev *Snapshot) []float64) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	w := fn(st.latest.Load())
	if w == nil {
		return st.latest.Load()
	}
	return st.publishLocked(w)
}

func (st *Store) publishLocked(w []float64) *Snapshot {
	if cur := st.latest.Load(); cur != nil && len(w) != cur.Len() {
		panic(fmt.Sprintf("weights: publishing %d weights onto a %d-edge store", len(w), cur.Len()))
	}
	cp := make([]float64, len(w))
	copy(cp, w)
	inf := math.Inf(1)
	for e := range st.banned {
		cp[e] = inf
	}
	snap := NewSnapshot(st.next, cp)
	// Record the changed-edge delta vs the superseded snapshot when it is
	// small (closures, spot republishes): one compare pass here saves every
	// consumer a derived-state rescan. Bulk publishes overflow MaxDelta and
	// leave the delta unset.
	if prev := st.latest.Load(); prev != nil {
		changed := make([]graph.EdgeID, 0, MaxDelta)
		pw := prev.Weights()
		for e := range cp {
			if cp[e] != pw[e] {
				if len(changed) == MaxDelta {
					changed = nil
					break
				}
				changed = append(changed, graph.EdgeID(e))
			}
		}
		if changed != nil {
			snap.deltaOK = true
			snap.deltaSince = prev.Version()
			snap.changed = changed
		}
	}
	st.next++
	st.latest.Store(snap)
	for _, fn := range st.subs {
		fn(snap)
	}
	return snap
}

// Ban marks edges impassable in this store's metric and republishes the
// current weights with the mask applied, so the closure takes effect
// immediately and survives every future Publish.
func (st *Store) Ban(edges ...graph.EdgeID) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range edges {
		st.banned[e] = struct{}{}
	}
	return st.publishLocked(st.latest.Load().Weights())
}

// Banned returns the currently banned edges, in no particular order.
func (st *Store) Banned() []graph.EdgeID {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]graph.EdgeID, 0, len(st.banned))
	for e := range st.banned {
		out = append(out, e)
	}
	return out
}

// Subscribe registers fn to run on every subsequent publish, synchronously
// under the store's publisher lock — keep it quick and never call back
// into Publish/Ban from it (kick a goroutine for heavy work, as the
// serving layer does for CH re-customization).
func (st *Store) Subscribe(fn func(*Snapshot)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.subs = append(st.subs, fn)
}
