package weights

import (
	"math"
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestStoreVersioning(t *testing.T) {
	st := NewStore([]float64{1, 2, 3})
	s1 := st.Latest()
	if s1.Version() != 1 {
		t.Fatalf("initial version = %d, want 1", s1.Version())
	}
	if got := s1.Weights(); got[1] != 2 {
		t.Fatalf("initial weights = %v", got)
	}

	s2 := st.Publish([]float64{4, 5, 6})
	if s2.Version() != 2 {
		t.Fatalf("second version = %d, want 2", s2.Version())
	}
	if st.Latest() != s2 {
		t.Fatal("Latest does not return the newest snapshot")
	}
	// The superseded snapshot is immutable and still readable.
	if s1.Weights()[0] != 1 {
		t.Fatal("old snapshot mutated by publish")
	}
}

func TestPublishCopiesInput(t *testing.T) {
	w := []float64{1, 2}
	st := NewStore(w)
	w[0] = 99
	if st.Latest().Weights()[0] != 1 {
		t.Fatal("store aliases the caller's slice")
	}
}

func TestPublishLengthMismatchPanics(t *testing.T) {
	st := NewStore([]float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("publishing a wrong-length vector did not panic")
		}
	}()
	st.Publish([]float64{1})
}

func TestBanSurvivesPublishes(t *testing.T) {
	st := NewStore([]float64{1, 2, 3, 4})
	banned := st.Ban(graph.EdgeID(2))
	if banned.Version() != 2 {
		t.Fatalf("ban republished as version %d, want 2", banned.Version())
	}
	if !math.IsInf(banned.Weights()[2], 1) {
		t.Fatal("ban did not take effect immediately")
	}
	// A later publish of all-finite weights keeps the ban.
	next := st.Publish([]float64{9, 9, 9, 9})
	if !math.IsInf(next.Weights()[2], 1) {
		t.Fatal("ban lost on the next publish")
	}
	if next.Weights()[1] != 9 {
		t.Fatal("unbanned weights not taken from the published vector")
	}
	if got := st.Banned(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Banned() = %v, want [2]", got)
	}
}

func TestPinIsItsOwnSource(t *testing.T) {
	p := Pin([]float64{7})
	var src Source = p
	if src.Snapshot() != p {
		t.Fatal("pinned snapshot does not resolve to itself")
	}
	if p.Version() != Pinned {
		t.Fatalf("pinned version = %d, want %d", p.Version(), Pinned)
	}
}

func TestSubscribersSeeEveryPublishInOrder(t *testing.T) {
	st := NewStore([]float64{1})
	var got []Version
	st.Subscribe(func(s *Snapshot) { got = append(got, s.Version()) })
	st.Publish([]float64{2})
	st.Ban(graph.EdgeID(0))
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("subscriber saw versions %v, want [2 3]", got)
	}
}

// TestConcurrentPublishAndRead is the store's core guarantee: readers can
// resolve Latest while publishers race, versions stay strictly increasing,
// and every reader sees a fully formed snapshot.
func TestConcurrentPublishAndRead(t *testing.T) {
	st := NewStore(make([]float64, 16))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last Version
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := st.Latest()
				if s.Version() < last {
					t.Error("version went backwards")
					return
				}
				last = s.Version()
				if s.Len() != 16 {
					t.Error("torn snapshot")
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		st.Publish(make([]float64, 16))
	}
	close(stop)
	wg.Wait()
	if st.Version() != 201 {
		t.Fatalf("final version = %d, want 201", st.Version())
	}
}

func TestSnapshotDelta(t *testing.T) {
	st := NewStore([]float64{1, 2, 3, 4})
	if _, _, ok := st.Latest().Delta(); ok {
		t.Fatal("first snapshot must carry no delta")
	}

	// A spot change records exactly the changed edges against v1.
	s2 := st.Publish([]float64{1, 20, 3, 4})
	since, changed, ok := s2.Delta()
	if !ok || since != 1 || len(changed) != 1 || changed[0] != 1 {
		t.Fatalf("spot delta = (%d, %v, %v), want (1, [1], true)", since, changed, ok)
	}

	// An identical republish records an empty delta (nothing changed).
	s3 := st.Publish([]float64{1, 20, 3, 4})
	if since, changed, ok = s3.Delta(); !ok || since != 2 || len(changed) != 0 {
		t.Fatalf("no-op delta = (%d, %v, %v), want (2, [], true)", since, changed, ok)
	}

	// Bans list the newly closed edges.
	s4 := st.Ban(0, 3)
	since, changed, ok = s4.Delta()
	if !ok || since != 3 || len(changed) != 2 {
		t.Fatalf("ban delta = (%d, %v, %v), want (3, 2 edges, true)", since, changed, ok)
	}
	for _, e := range changed {
		if e != 0 && e != 3 {
			t.Fatalf("ban delta lists edge %d, want 0 and 3", e)
		}
	}

	// A re-ban of already-banned edges changes nothing.
	s5 := st.Ban(0)
	if _, changed, ok = s5.Delta(); !ok || len(changed) != 0 {
		t.Fatalf("re-ban delta = (%v, %v), want ([], true)", changed, ok)
	}
}

func TestSnapshotDeltaOverflow(t *testing.T) {
	base := make([]float64, MaxDelta*4)
	for i := range base {
		base[i] = 1
	}
	st := NewStore(base)
	bulk := make([]float64, len(base))
	for i := range bulk {
		bulk[i] = 2
	}
	if _, _, ok := st.Publish(bulk).Delta(); ok {
		t.Fatal("bulk publish beyond MaxDelta must carry no delta")
	}
	// The next small publish records against the bulk version again.
	bulk[7] = 3
	since, changed, ok := st.Publish(bulk).Delta()
	if !ok || since != 2 || len(changed) != 1 || changed[0] != graph.EdgeID(7) {
		t.Fatalf("post-bulk delta = (%d, %v, %v), want (2, [7], true)", since, changed, ok)
	}
}

func TestPinHasNoDelta(t *testing.T) {
	if _, _, ok := Pin([]float64{1}).Delta(); ok {
		t.Fatal("pinned snapshots must carry no delta")
	}
}

// TestUpdateAtomicReadModifyWrite pins Update's contract: fn sees the
// snapshot its publish immediately supersedes, nothing interleaves, a nil
// return skips the publish, and the ban mask still applies.
func TestUpdateAtomicReadModifyWrite(t *testing.T) {
	st := NewStore([]float64{1, 2})
	snap := st.Update(func(prev *Snapshot) []float64 {
		w := append([]float64(nil), prev.Weights()...)
		w[0] += 10
		return w
	})
	if snap.Version() != 2 || snap.Weights()[0] != 11 {
		t.Fatalf("update published v%d %v, want v2 [11 2]", snap.Version(), snap.Weights())
	}
	if got := st.Update(func(*Snapshot) []float64 { return nil }); got != snap {
		t.Fatalf("nil-returning Update must return the current snapshot unchanged")
	}
	if st.Version() != 2 {
		t.Fatalf("nil-returning Update must not publish (version %d)", st.Version())
	}
	st.Ban(0)
	snap = st.Update(func(prev *Snapshot) []float64 {
		w := append([]float64(nil), prev.Weights()...)
		w[1] = 7
		return w
	})
	if !math.IsInf(snap.Weights()[0], 1) || snap.Weights()[1] != 7 {
		t.Fatalf("Update must apply the ban mask: %v", snap.Weights())
	}
}

// TestConcurrentProducersGaplessVersions is the multi-producer pin: two
// producer families hammering one store through Publish and Update never
// tear the version sequence — every subscriber delivery is exactly the
// predecessor's version plus one, and read-modify-write updates never
// lose increments.
func TestConcurrentProducersGaplessVersions(t *testing.T) {
	st := NewStore([]float64{0})
	var mu sync.Mutex
	var seen []Version
	st.Subscribe(func(s *Snapshot) {
		mu.Lock()
		seen = append(seen, s.Version())
		mu.Unlock()
	})
	const producers, each = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if p%2 == 0 {
					st.Publish([]float64{float64(p)})
				} else {
					st.Update(func(prev *Snapshot) []float64 {
						return []float64{prev.Weights()[0] + 1}
					})
				}
			}
		}(p)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != producers*each {
		t.Fatalf("subscriber saw %d publishes, want %d", len(seen), producers*each)
	}
	for i, v := range seen {
		if v != Version(i+2) { // NewStore published v1 before subscription
			t.Fatalf("version sequence has a gap at %d: %v...", i, seen[:i+1])
		}
	}
	if got := st.Version(); got != Version(producers*each+1) {
		t.Fatalf("final version %d, want %d", got, producers*each+1)
	}
}
