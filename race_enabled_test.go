//go:build race

package repro

// raceEnabled reports that the race detector is active; its
// instrumentation allocates, so allocation-count assertions are skipped.
const raceEnabled = true
